package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kernel is the sharded discrete-event scheduler. Clients are registered
// with a footprint — the set of machines whose queueing resources their Op
// closures may touch, home machine first. The kernel unions overlapping
// footprints into shards: groups of machines (and their clients) that can
// only interact with each other. Each shard runs its own per-machine event
// queues under a deterministic fabric-boundary merge (see mergeHeap), and
// distinct shards run concurrently on up to Workers host threads.
//
// Determinism contract: results are byte-identical at any worker count.
// Within a shard, dispatch follows the exact (virtual time, client index)
// order of the classic single-heap loop. Across shards there is nothing to
// order — a shard is closed under its declared footprints, so no event ever
// crosses a shard boundary; the conservative cross-machine lookahead window
// (the minimum fabric latency, SetLookahead) is therefore trivially
// respected at any advance, and the per-endpoint inbox hashes kept by
// internal/fabric witness that the cross-machine delivery merge order is
// identical at every worker count. Worker count changes wall-clock time
// only.
//
// A client registered with no footprint may share state with anything, so
// it collapses the whole run into one shard (the conservative default —
// RunClosedLoop is exactly this). Declaring a footprint is a promise: an Op
// that touches a machine outside it makes results depend on shard layout.
type Kernel struct {
	workers   int
	lookahead Duration
	clients   []*Client
	foot      [][]int
	global    bool // some client declared no footprint: everything is one shard
}

// NewKernel returns an empty kernel that runs shards on up to workers host
// threads. Workers below 1 are clamped to 1 (fully serial).
func NewKernel(workers int) *Kernel {
	if workers < 1 {
		workers = 1
	}
	return &Kernel{workers: workers}
}

// Workers reports the configured worker count.
func (k *Kernel) Workers() int { return k.workers }

// SetLookahead records the conservative cross-machine lookahead window: the
// minimum virtual time between a send on one machine and its earliest effect
// on another (propagation plus switch latency on the simulated fabric). The
// kernel's shard partition never needs to throttle to it — shards do not
// exchange events — but it is recorded for diagnostics and for schedulers
// that sub-shard communicating machines.
func (k *Kernel) SetLookahead(d Duration) { k.lookahead = d }

// Lookahead reports the recorded cross-machine lookahead window.
func (k *Kernel) Lookahead() Duration { return k.lookahead }

// Add registers a client. machines is the client's footprint: every machine
// whose resources the client's Op may touch, the home (posting) machine
// first. No machines means the client may touch anything; the whole run then
// becomes a single shard.
func (k *Kernel) Add(c *Client, machines ...int) {
	for _, m := range machines {
		if m < 0 {
			panic(fmt.Sprintf("sim: negative machine id %d in client footprint", m))
		}
	}
	k.clients = append(k.clients, c)
	if len(machines) == 0 {
		k.foot = append(k.foot, nil)
		k.global = true
		return
	}
	foot := make([]int, len(machines))
	copy(foot, machines)
	k.foot = append(k.foot, foot)
}

// shardDef is one shard: the clients of one footprint-connected machine
// group, in original registration order.
type shardDef struct {
	clients []*Client
	idx     []int // original registration indices
	home    []int // home machine per client (all zero for a global shard)
}

// Run drives all registered clients to the horizon and returns the combined
// result, with per-client stats in registration order. See RunClosedLoop for
// the closed-loop semantics; Run adds only the shard partition and the
// worker pool on top.
func (k *Kernel) Run(horizon Time) Result {
	if horizon <= 0 {
		panic("sim: horizon must be positive")
	}
	for i, c := range k.clients {
		if c.Window < 1 {
			panic(fmt.Sprintf("sim: client %d window must be >= 1", i))
		}
		if c.PostCost <= 0 {
			panic(fmt.Sprintf("sim: client %d post cost must be > 0", i))
		}
		c.nextPost = 0
		c.outstanding = c.outstanding[:0]
		c.posted, c.completed = 0, 0
		c.latencySum, c.latencyMax = 0, 0
		c.latencyMin = MaxTime
		c.latencies = nil
		c.cpuBusy = 0
	}

	shards := k.partition()
	if k.workers == 1 || len(shards) <= 1 {
		for _, sd := range shards {
			runShard(sd, horizon)
		}
	} else {
		k.runParallel(shards, horizon)
	}

	res := Result{Horizon: horizon, Clients: make([]ClientStats, len(k.clients))}
	for i, c := range k.clients {
		s := ClientStats{
			Posted:     c.posted,
			Completed:  c.completed,
			LatencyMax: c.latencyMax,
			CPUBusy:    c.cpuBusy,
		}
		if c.completed > 0 {
			s.LatencyAvg = c.latencySum / Duration(c.completed)
			s.LatencyMin = c.latencyMin
		}
		if c.RecordLatencies {
			sort.Slice(c.latencies, func(a, b int) bool { return c.latencies[a] < c.latencies[b] })
			s.Latencies = c.latencies
		}
		res.Clients[i] = s
		res.Completed += c.completed
	}
	return res
}

// partition unions overlapping footprints and groups clients into shards,
// ordered by each shard's first-registered client. A global client (no
// footprint) forces a single shard.
func (k *Kernel) partition() []*shardDef {
	if len(k.clients) == 0 {
		return nil
	}
	if k.global {
		sd := &shardDef{
			clients: k.clients,
			idx:     make([]int, len(k.clients)),
			home:    make([]int, len(k.clients)),
		}
		for i := range sd.idx {
			sd.idx[i] = i
		}
		return []*shardDef{sd}
	}
	// Union-find over machine ids (ids are sparse; index through a map).
	parent := map[int]int{}
	var find func(m int) int
	find = func(m int) int {
		p, ok := parent[m]
		if !ok {
			parent[m] = m
			return m
		}
		if p == m {
			return m
		}
		r := find(p)
		parent[m] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, foot := range k.foot {
		for _, m := range foot[1:] {
			union(foot[0], m)
		}
	}
	byRoot := map[int]*shardDef{}
	var shards []*shardDef
	for i, c := range k.clients {
		root := find(k.foot[i][0])
		sd := byRoot[root]
		if sd == nil {
			sd = &shardDef{}
			byRoot[root] = sd
			shards = append(shards, sd) // first client wins: registration order
		}
		sd.clients = append(sd.clients, c)
		sd.idx = append(sd.idx, i)
		sd.home = append(sd.home, k.foot[i][0])
	}
	return shards
}

// runParallel executes shards on a bounded worker pool. Shards share no
// state (that is the footprint contract), so workers only write disjoint
// client records; a panic inside a shard is re-raised in the caller, first
// shard first, so failures are reported deterministically.
func (k *Kernel) runParallel(shards []*shardDef, horizon Time) {
	workers := k.workers
	if workers > len(shards) {
		workers = len(shards)
	}
	panics := make([]any, len(shards))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				func() {
					defer func() { panics[i] = recover() }()
					runShard(shards[i], horizon)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// runShard drives one shard to the horizon: per-machine client queues under
// the deterministic merge. The inner loop keeps dispatching from the machine
// holding the globally earliest client for as long as that machine's front
// stays strictly earliest, so a machine bursting through its own work (the
// common closed-loop shape: a client re-arms every PostCost nanoseconds
// while cross-machine round trips take microseconds) never touches the
// merge heap at all.
func runShard(sd *shardDef, horizon Time) {
	// Group the shard's clients into per-machine queues, machines ordered by
	// first appearance (the order never affects dispatch — the merge key is
	// global — only heap shapes).
	queueOf := map[int]*clientQueue{}
	var mqs []*clientQueue
	for i, c := range sd.clients {
		q := queueOf[sd.home[i]]
		if q == nil {
			q = &clientQueue{}
			queueOf[sd.home[i]] = q
			mqs = append(mqs, q)
		}
		q.cs = append(q.cs, c)
		q.idx = append(q.idx, sd.idx[i])
	}
	for _, q := range mqs {
		q.init()
	}
	merge := mergeHeap{mqs: mqs}
	merge.init()

	for merge.len() > 0 {
		mq := merge.top()
		secondT, secondI := merge.secondKey()
		for {
			c := mq.cs[0]
			t := c.nextAction()
			if t >= horizon || (c.MaxOps > 0 && c.posted >= c.MaxOps) {
				mq.popTop()
				if mq.len() == 0 {
					merge.popTop()
					break
				}
			} else {
				// Retire anything that has already completed by t.
				for len(c.outstanding) > 0 && c.outstanding[0] <= t {
					c.outstanding.pop()
				}
				complete := c.Op(t)
				if complete < t {
					panic("sim: op completed before it was posted")
				}
				c.posted++
				if complete <= horizon {
					c.completed++
					lat := complete - t
					c.latencySum += lat
					if lat > c.latencyMax {
						c.latencyMax = lat
					}
					if lat < c.latencyMin {
						c.latencyMin = lat
					}
					if c.RecordLatencies {
						c.latencies = append(c.latencies, lat)
					}
				}
				c.outstanding.push(complete)
				c.nextPost = t + c.PostCost
				c.cpuBusy += c.PostCost
				mq.fixTop()
			}
			if ft, fi := mq.frontKey(); !keyLess(ft, fi, secondT, secondI) {
				merge.fixTop()
				break
			}
		}
	}
}
