package sim

// Backoff is a clamped exponential back-off walk: after a failed attempt,
// wait Base, doubling up to Max. It is the one back-off shape the repository
// uses — remote/local spinlocks (internal/core, Section III-E's Anderson
// scheme) and the connection-recovery layer (internal/proxy) all walk the
// same curve, so their retry behaviour stays comparable across experiments.
type Backoff struct {
	Base Duration
	Max  Duration
}

// DefaultBackoff mirrors the paper's back-off counterpart curves: the cap
// stays near one lock round trip so a free resource is re-probed promptly.
func DefaultBackoff() Backoff {
	return Backoff{Base: 500, Max: 4 * Microsecond}
}

// Next doubles the delay, clamped to Max: with a non-power-of-two cap (say
// Base=500ns, Max=3µs) the sequence is 500, 1000, 2000, 3000, 3000, …
// rather than overshooting to 4000.
func (b Backoff) Next(delay Duration) Duration {
	delay *= 2
	if delay > b.Max {
		delay = b.Max
	}
	return delay
}
