// Package sim provides the deterministic discrete-event kernel that underlies
// the simulated RDMA fabric: a virtual nanosecond clock, FCFS queueing
// resources, bandwidth pipes, and a closed-loop multi-client driver.
//
// Everything in the repository that reports latency or throughput derives its
// numbers from this package, so runs are bit-identical across machines and
// immune to host scheduling noise.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit, e.g. "1.16us" or "2.5ms".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime is the largest representable virtual time.
const MaxTime Time = 1<<63 - 1

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// PerSecond converts an operation service time into a rate (operations per
// second). It is the inverse of ServiceFor.
func PerSecond(service Duration) float64 {
	if service <= 0 {
		return 0
	}
	return float64(Second) / float64(service)
}

// ServiceFor converts a rate in operations per second into the service time
// of one operation. It is the inverse of PerSecond.
func ServiceFor(opsPerSecond float64) Duration {
	if opsPerSecond <= 0 {
		return 0
	}
	return Duration(float64(Second) / opsPerSecond)
}

// TransferTime returns the serialization delay of size bytes over a link of
// the given bandwidth in bytes per second.
func TransferTime(size int, bytesPerSecond float64) Duration {
	if size <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return Duration(float64(size) / bytesPerSecond * float64(Second))
}
