package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceIdleStart(t *testing.T) {
	r := NewResource("r")
	start, end := r.Acquire(100, 50)
	if start != 100 || end != 150 {
		t.Fatalf("got [%d,%d], want [100,150]", start, end)
	}
}

func TestResourceQueues(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 100)
	start, end := r.Acquire(10, 20) // arrives while busy, waits
	if start != 100 || end != 120 {
		t.Fatalf("got [%d,%d], want [100,120]", start, end)
	}
	start, end = r.Acquire(500, 20) // arrives after idle
	if start != 500 || end != 520 {
		t.Fatalf("got [%d,%d], want [500,520]", start, end)
	}
}

func TestResourceZeroService(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 100)
	start, end := r.Acquire(0, 0)
	if start != 100 || end != 100 {
		t.Fatalf("zero service should pass through queue: got [%d,%d]", start, end)
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative service")
		}
	}()
	NewResource("r").Acquire(0, -1)
}

func TestResourceAccounting(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 100)
	r.Acquire(0, 300)
	if r.Busy() != 400 {
		t.Fatalf("busy=%d, want 400", r.Busy())
	}
	if r.Served() != 2 {
		t.Fatalf("served=%d, want 2", r.Served())
	}
	if u := r.Utilization(800); u != 0.5 {
		t.Fatalf("utilization=%v, want 0.5", u)
	}
	if u := r.Utilization(100); u != 1 {
		t.Fatalf("utilization should clamp to 1, got %v", u)
	}
	r.Reset()
	if r.Busy() != 0 || r.Served() != 0 || r.NextFree() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: service windows returned by a resource never overlap and are
// emitted in nondecreasing start order when arrivals are nondecreasing.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p")
		var arrival Time
		var prevEnd Time
		for i := 0; i < int(n); i++ {
			arrival += Time(rng.Intn(200))
			service := Duration(rng.Intn(100))
			start, end := r.Acquire(arrival, service)
			if start < arrival || end != start+service {
				return false
			}
			if start < prevEnd { // overlap with previous service window
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals the sum of requested services.
func TestResourceBusyConservation(t *testing.T) {
	f := func(services []uint16) bool {
		r := NewResource("p")
		var want Duration
		for _, s := range services {
			r.Acquire(0, Duration(s))
			want += Duration(s)
		}
		return r.Busy() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipeTransferTime(t *testing.T) {
	p := NewPipe("wire", 1e9, 0) // 1 GB/s => 1ns per byte
	start, end := p.Transfer(0, 1000)
	if start != 0 || end != 1000 {
		t.Fatalf("got [%d,%d], want [0,1000]", start, end)
	}
	if p.Bytes() != 1000 {
		t.Fatalf("bytes=%d, want 1000", p.Bytes())
	}
}

func TestPipeOverheadAndQueueing(t *testing.T) {
	p := NewPipe("wire", 1e9, 50)
	end := p.Delay(0, 100) // 50 + 100
	if end != 150 {
		t.Fatalf("end=%d, want 150", end)
	}
	end = p.Delay(0, 100) // queued behind first
	if end != 300 {
		t.Fatalf("end=%d, want 300", end)
	}
}

func TestPipeZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPipe("bad", 0, 0)
}

func TestTransferTime(t *testing.T) {
	if d := TransferTime(5_000_000_000, 5e9); d != Second {
		t.Fatalf("got %v, want 1s", d)
	}
	if d := TransferTime(0, 5e9); d != 0 {
		t.Fatalf("zero size should be free, got %v", d)
	}
	if d := TransferTime(-5, 5e9); d != 0 {
		t.Fatalf("negative size should be free, got %v", d)
	}
}

func TestRateHelpers(t *testing.T) {
	if got := PerSecond(200); got != 5e6 {
		t.Fatalf("PerSecond(200ns)=%v, want 5e6", got)
	}
	if got := ServiceFor(5e6); got != 200 {
		t.Fatalf("ServiceFor(5e6)=%v, want 200ns", got)
	}
	if got := PerSecond(0); got != 0 {
		t.Fatalf("PerSecond(0)=%v, want 0", got)
	}
	if got := ServiceFor(0); got != 0 {
		t.Fatalf("ServiceFor(0)=%v, want 0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{1160, "1160ns"},
		{25 * Microsecond, "25.00us"},
		{15 * Millisecond, "15.000ms"},
		{25 * Second, "25.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String()=%q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min/Max broken")
	}
}

func TestFIFOResourceNoGapFilling(t *testing.T) {
	r := NewFIFOResource("fifo")
	r.Acquire(0, 100)
	r.Acquire(500, 100) // leaves a gap [100,500)
	start, end := r.Acquire(50, 100)
	if start != 600 || end != 700 {
		t.Fatalf("strict FIFO must queue at the tail: got [%d,%d], want [600,700]", start, end)
	}
	// Gap-filling resource would use the gap instead.
	g := NewResource("gap")
	g.Acquire(0, 100)
	g.Acquire(500, 100)
	start, _ = g.Acquire(50, 100)
	if start != 100 {
		t.Fatalf("gap-filling should start at 100, got %d", start)
	}
}

func TestResourceGapFillingExactFit(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 100)
	r.Acquire(150, 100) // gap [100,150)
	start, end := r.Acquire(0, 50)
	if start != 100 || end != 150 {
		t.Fatalf("exact-fit gap: got [%d,%d], want [100,150]", start, end)
	}
	// Everything merged into one solid interval [0,250).
	if r.NextFree() != 250 {
		t.Fatalf("NextFree=%d, want 250", r.NextFree())
	}
	start, _ = r.Acquire(0, 10)
	if start != 250 {
		t.Fatalf("merged span should force start at 250, got %d", start)
	}
}

func TestResourceCompaction(t *testing.T) {
	r := NewResource("r")
	// Create far more disjoint intervals than maxIntervals.
	for i := 0; i < 4*maxIntervals; i++ {
		r.Acquire(Time(i*1000), 10)
	}
	if len(r.intervals) > maxIntervals {
		t.Fatalf("interval list grew to %d, cap is %d", len(r.intervals), maxIntervals)
	}
	if r.Served() != int64(4*maxIntervals) {
		t.Fatalf("served=%d", r.Served())
	}
}

// Property: gap-filling placement agrees with a brute-force reference that
// scans all gaps, for arbitrary (possibly out-of-order) arrivals.
func TestGapFillingAgainstReference(t *testing.T) {
	type iv struct{ start, end Time }
	place := func(busy []iv, arrival Time, service Duration) Time {
		// Reference: earliest feasible start >= arrival, skipping busy spans.
		start := arrival
		for {
			moved := false
			for _, b := range busy {
				if start < b.end && b.start < start+Time(service) {
					start = b.end
					moved = true
				}
				// Zero-service ops may not start strictly inside a span.
				if service == 0 && start >= b.start && start < b.end {
					start = b.end
					moved = true
				}
			}
			if !moved {
				return start
			}
		}
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("ref")
		var busy []iv
		for i := 0; i < int(n%50)+1; i++ {
			arrival := Time(rng.Intn(2000))
			service := Duration(rng.Intn(50))
			want := place(busy, arrival, service)
			start, end := r.Acquire(arrival, service)
			if start != want {
				return false
			}
			if service > 0 {
				busy = append(busy, iv{start, end})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
