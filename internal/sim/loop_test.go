package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fixedOp returns an Op with a constant latency and no shared resources.
func fixedOp(latency Duration) Op {
	return func(post Time) Time { return post + latency }
}

func TestClosedLoopSynchronous(t *testing.T) {
	// Window 1, 1us per op, 100ns post cost: one op completes every 1.1us...
	// actually nextPost advances by PostCost but window gates at completion,
	// so steady state is one op per max(PostCost, latency) = 1us.
	c := &Client{Op: fixedOp(Microsecond), PostCost: 100, Window: 1}
	res := RunClosedLoop([]*Client{c}, Millisecond)
	want := int64(Millisecond / Microsecond) // ~1000
	if res.Completed < want-2 || res.Completed > want {
		t.Fatalf("completed=%d, want ~%d", res.Completed, want)
	}
	if got := res.LatencyAvg(); got != Microsecond {
		t.Fatalf("latency=%v, want 1us", got)
	}
}

func TestClosedLoopWindowPipelines(t *testing.T) {
	// With a deep window, throughput is bound by PostCost, not latency.
	c := &Client{Op: fixedOp(10 * Microsecond), PostCost: 100, Window: 1024}
	res := RunClosedLoop([]*Client{c}, Millisecond)
	want := int64(Millisecond / 100)
	if res.Completed < want-200 || res.Completed > want {
		t.Fatalf("completed=%d, want ~%d", res.Completed, want)
	}
}

func TestClosedLoopSharedResourceBound(t *testing.T) {
	// Four clients hammer one resource with 1us service: aggregate
	// throughput must equal the resource rate (1 MOPS), not 4x.
	r := NewResource("eu")
	op := func(post Time) Time { return r.Delay(post, Microsecond) }
	var clients []*Client
	for i := 0; i < 4; i++ {
		clients = append(clients, &Client{Op: op, PostCost: 50, Window: 4})
	}
	res := RunClosedLoop(clients, 10*Millisecond)
	if got := res.Throughput(); got < 0.95e6 || got > 1.01e6 {
		t.Fatalf("throughput=%v, want ~1e6", got)
	}
}

func TestClosedLoopMaxOps(t *testing.T) {
	c := &Client{Op: fixedOp(10), PostCost: 10, Window: 1, MaxOps: 7}
	res := RunClosedLoop([]*Client{c}, Second)
	if res.Completed != 7 {
		t.Fatalf("completed=%d, want 7", res.Completed)
	}
	if res.Clients[0].Posted != 7 {
		t.Fatalf("posted=%d, want 7", res.Clients[0].Posted)
	}
}

func TestClosedLoopLatencyStats(t *testing.T) {
	lat := Duration(0)
	op := func(post Time) Time {
		lat += 100
		return post + lat
	}
	c := &Client{Op: op, PostCost: 10, Window: 1, MaxOps: 3}
	res := RunClosedLoop([]*Client{c}, Second)
	s := res.Clients[0]
	if s.LatencyMin != 100 || s.LatencyMax != 300 || s.LatencyAvg != 200 {
		t.Fatalf("latency stats min=%v avg=%v max=%v, want 100/200/300",
			s.LatencyMin, s.LatencyAvg, s.LatencyMax)
	}
}

func TestClosedLoopDeterminism(t *testing.T) {
	run := func() int64 {
		r := NewResource("eu")
		rng := rand.New(rand.NewSource(7))
		op := func(post Time) Time {
			return r.Delay(post, Duration(100+rng.Intn(100)))
		}
		clients := []*Client{
			{Op: op, PostCost: 30, Window: 8},
			{Op: op, PostCost: 50, Window: 2},
			{Op: op, PostCost: 70, Window: 4},
		}
		return RunClosedLoop(clients, Millisecond).Completed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no ops completed")
	}
}

func TestClosedLoopSharedState(t *testing.T) {
	// Ops mutate shared state; sequential dispatch must keep it consistent.
	counter := 0
	op := func(post Time) Time {
		counter++
		return post + 100
	}
	clients := []*Client{
		{Op: op, PostCost: 50, Window: 2},
		{Op: op, PostCost: 50, Window: 2},
	}
	res := RunClosedLoop(clients, Millisecond)
	posted := res.Clients[0].Posted + res.Clients[1].Posted
	if int64(counter) != posted {
		t.Fatalf("counter=%d, posted=%d", counter, posted)
	}
}

func TestClosedLoopPanicsOnBadConfig(t *testing.T) {
	cases := []struct {
		name string
		c    *Client
	}{
		{"zero window", &Client{Op: fixedOp(1), PostCost: 1, Window: 0}},
		{"zero post cost", &Client{Op: fixedOp(1), PostCost: 0, Window: 1}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			RunClosedLoop([]*Client{tc.c}, Millisecond)
		}()
	}
}

func TestClosedLoopPanicsOnTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for op completing in the past")
		}
	}()
	op := func(post Time) Time { return post - 1 }
	RunClosedLoop([]*Client{{Op: op, PostCost: 1, Window: 1}}, Millisecond)
}

// Property: with a single shared FCFS resource, completed ops never exceed
// the resource's theoretical capacity, regardless of client shapes.
func TestClosedLoopCapacityProperty(t *testing.T) {
	f := func(seed int64, nClients uint8, svc uint16) bool {
		n := int(nClients%8) + 1
		service := Duration(svc%1000) + 10
		r := NewResource("eu")
		op := func(post Time) Time { return r.Delay(post, service) }
		rng := rand.New(rand.NewSource(seed))
		var clients []*Client
		for i := 0; i < n; i++ {
			clients = append(clients, &Client{
				Op:       op,
				PostCost: Duration(rng.Intn(100)) + 1,
				Window:   rng.Intn(16) + 1,
			})
		}
		horizon := Millisecond
		res := RunClosedLoop(clients, horizon)
		capacity := int64(horizon/service) + 1
		return res.Completed <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnce(t *testing.T) {
	if got := RunOnce(fixedOp(1234), 100); got != 1234 {
		t.Fatalf("latency=%v, want 1234", got)
	}
}

func TestResultAggregation(t *testing.T) {
	res := Result{
		Horizon:   Second,
		Completed: 2_000_000,
		Clients: []ClientStats{
			{Completed: 1_000_000, LatencyAvg: 100, CPUBusy: 5},
			{Completed: 1_000_000, LatencyAvg: 300, CPUBusy: 7},
		},
	}
	if got := res.MOPS(); got != 2.0 {
		t.Fatalf("MOPS=%v, want 2", got)
	}
	if got := res.LatencyAvg(); got != 200 {
		t.Fatalf("LatencyAvg=%v, want 200", got)
	}
	if got := res.TotalCPUBusy(); got != 12 {
		t.Fatalf("TotalCPUBusy=%v, want 12", got)
	}
}

func TestRecordLatenciesPercentiles(t *testing.T) {
	lat := Duration(0)
	op := func(post Time) Time {
		lat += 100
		return post + lat
	}
	c := &Client{Op: op, PostCost: 10, Window: 1, MaxOps: 100, RecordLatencies: true}
	res := RunClosedLoop([]*Client{c}, Second)
	s := res.Clients[0]
	if len(s.Latencies) != 100 {
		t.Fatalf("recorded %d latencies", len(s.Latencies))
	}
	if s.Percentile(0) != 100 || s.Percentile(1) != 10000 {
		t.Fatalf("extremes %v/%v", s.Percentile(0), s.Percentile(1))
	}
	p50 := s.Percentile(0.5)
	if p50 < 4000 || p50 > 6000 {
		t.Fatalf("p50=%v", p50)
	}
	// Out-of-range quantiles clamp.
	if s.Percentile(-1) != s.Percentile(0) || s.Percentile(2) != s.Percentile(1) {
		t.Fatal("quantile clamping broken")
	}
	// Without the flag, nothing is recorded.
	c2 := &Client{Op: fixedOp(100), PostCost: 10, Window: 1, MaxOps: 5}
	res2 := RunClosedLoop([]*Client{c2}, Second)
	if res2.Clients[0].Latencies != nil {
		t.Fatal("latencies recorded without the flag")
	}
	if res2.Clients[0].Percentile(0.5) != 0 {
		t.Fatal("percentile without records should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	// Even-length set: the median falls between two order statistics and
	// must be interpolated, not truncated to the lower one.
	s := ClientStats{Latencies: []Duration{10, 20, 30, 40}}
	if got := s.Percentile(0.5); got != 25 {
		t.Fatalf("p50 of {10,20,30,40} = %v, want 25", got)
	}
	// p99 of 1..100: rank 98.01 -> 99 + 0.01*(100-99) = 99.01, rounds to 99.
	lats := make([]Duration, 100)
	for i := range lats {
		lats[i] = Duration(i + 1)
	}
	s = ClientStats{Latencies: lats}
	if got := s.Percentile(0.99); got != 99 {
		t.Fatalf("p99 of 1..100 = %v, want 99", got)
	}
	// p50 of 1..100: rank 49.5 -> midway between 50 and 51, rounds up to 51.
	if got := s.Percentile(0.5); got != 51 {
		t.Fatalf("p50 of 1..100 = %v, want 51", got)
	}
	// Fractional interpolation rounds half up on the nanosecond grid.
	s = ClientStats{Latencies: []Duration{0, 1}}
	if got := s.Percentile(0.5); got != 1 {
		t.Fatalf("p50 of {0,1} = %v, want 1 (round half up)", got)
	}
	// Single sample: every quantile is that sample.
	s = ClientStats{Latencies: []Duration{42}}
	if s.Percentile(0) != 42 || s.Percentile(0.5) != 42 || s.Percentile(1) != 42 {
		t.Fatal("single-sample quantiles should all be the sample")
	}
}
