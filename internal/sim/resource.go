package sim

import (
	"fmt"
	"sort"
)

// maxIntervals bounds the busy-interval bookkeeping of a Resource. When the
// list grows past this, the oldest half is folded into one solid span, which
// conservatively closes any remaining gaps there.
const maxIntervals = 256

// interval is one contiguous busy span [start, end).
type interval struct {
	start Time
	end   Time
}

// Resource models a single server: one request is serviced at a time.
// Requests are placed at the earliest free gap at or after their arrival
// time, so the service discipline approximates FCFS in *arrival* order even
// when Acquire calls arrive out of order — which happens whenever a
// multi-round-trip operation is simulated atomically and a later-dispatched
// operation has an earlier arrival at a shared stage.
//
// Resource is not safe for concurrent use; the event kernel is single
// threaded over virtual time by design.
type Resource struct {
	name      string
	strict    bool       // strict FIFO: no gap-filling, later calls queue at the tail
	intervals []interval // sorted, non-overlapping, non-adjacent
	busy      Duration   // accumulated service time, for utilization
	served    int64      // number of Acquire calls
	onAcquire AcquireFunc
}

// AcquireFunc observes one service placement on a Resource or Pipe: the
// request arrived at arrival, started service at start (start - arrival is
// the queueing wait) and completes at end. Observers are passive — they see
// the same placement the caller receives and must not touch simulation
// state, so attaching one never changes timing.
type AcquireFunc func(arrival, start, end Time)

// Observe attaches fn as the resource's acquire observer (nil detaches).
// The observer survives Reset, so measurement phases that clear queue state
// keep reporting to the same telemetry streams.
func (r *Resource) Observe(fn AcquireFunc) { r.onAcquire = fn }

// NewResource returns an idle gap-filling resource with the given diagnostic
// name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// NewFIFOResource returns a resource with strict FIFO discipline: every
// request starts no earlier than all previously scheduled work, regardless
// of its arrival time. Use this for units that process requests strictly in
// order, like the RNIC's atomic unit — a lock release CAS must wait behind
// the competitor CASes already queued there.
func NewFIFOResource(name string) *Resource {
	return &Resource{name: name, strict: true}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire requests service of the given duration starting no earlier than
// arrival, placing it at the earliest gap that fits. It returns the start
// and end of the service window.
func (r *Resource) Acquire(arrival Time, service Duration) (start, end Time) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %d on %s", service, r.name))
	}
	r.busy += service
	r.served++
	start = r.place(arrival, service)
	end = start + service
	if r.onAcquire != nil {
		r.onAcquire(arrival, start, end)
	}
	return start, end
}

// place finds the earliest gap at or after arrival that fits the service and
// records it. A zero-length service passes through the queue: it lands at
// the first idle instant at or after arrival.
func (r *Resource) place(arrival Time, service Duration) Time {
	// Fast path: after the last busy span.
	n := len(r.intervals)
	if n == 0 || arrival >= r.intervals[n-1].end {
		r.insertAt(n, arrival, service)
		return arrival
	}
	if r.strict {
		start := r.intervals[n-1].end
		r.insertAt(n, start, service)
		return start
	}
	// Find the first interval ending after arrival.
	i := sort.Search(n, func(k int) bool { return r.intervals[k].end > arrival })
	for ; i <= n; i++ {
		gapStart := arrival
		if i > 0 && r.intervals[i-1].end > gapStart {
			gapStart = r.intervals[i-1].end
		}
		gapEnd := MaxTime
		if i < n {
			gapEnd = r.intervals[i].start
		}
		if gapEnd-gapStart > service || (gapEnd == MaxTime && gapEnd-gapStart >= service) {
			r.insertAt(i, gapStart, service)
			return gapStart
		}
		if service > 0 && gapEnd-gapStart == service {
			r.insertAt(i, gapStart, service)
			return gapStart
		}
	}
	panic("sim: unreachable: tail gap always fits")
}

// insertAt records [start, start+service) as busy, inserting before index i
// and merging with adjacent intervals. Zero-length services record nothing.
func (r *Resource) insertAt(i int, start Time, service Duration) {
	if service == 0 {
		return
	}
	end := start + service
	// Merge with predecessor?
	mergePrev := i > 0 && r.intervals[i-1].end == start
	mergeNext := i < len(r.intervals) && r.intervals[i].start == end
	switch {
	case mergePrev && mergeNext:
		r.intervals[i-1].end = r.intervals[i].end
		r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
	case mergePrev:
		r.intervals[i-1].end = end
	case mergeNext:
		r.intervals[i].start = start
	default:
		r.intervals = append(r.intervals, interval{})
		copy(r.intervals[i+1:], r.intervals[i:])
		r.intervals[i] = interval{start, end}
	}
	if len(r.intervals) > maxIntervals {
		// Fold the oldest half into one solid span: conservative (gaps
		// there become busy), bounded memory.
		half := len(r.intervals) / 2
		solid := interval{r.intervals[0].start, r.intervals[half-1].end}
		rest := r.intervals[half-1:]
		rest[0] = solid
		r.intervals = append(r.intervals[:0], rest...)
	}
}

// Delay is a convenience wrapper that returns only the completion time.
func (r *Resource) Delay(arrival Time, service Duration) Time {
	_, end := r.Acquire(arrival, service)
	return end
}

// NextFree reports the end of the last scheduled busy span.
func (r *Resource) NextFree() Time {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// Busy reports the accumulated service time.
func (r *Resource) Busy() Duration { return r.busy }

// Served reports the number of completed service requests.
func (r *Resource) Served() int64 { return r.served }

// Utilization reports the fraction of [0, horizon] the resource spent busy.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.intervals = r.intervals[:0]
	r.busy = 0
	r.served = 0
}

// Pipe models a bandwidth-limited channel (a wire, a PCIe lane bundle, a
// memory channel): transfers serialize, and each transfer of n bytes occupies
// the pipe for n/bandwidth plus a fixed per-transfer overhead.
type Pipe struct {
	res            Resource
	bytesPerSecond float64
	overhead       Duration
	bytes          int64
}

// NewPipe returns a pipe with the given bandwidth in bytes per second and a
// fixed per-transfer overhead (header/arbitration cost).
func NewPipe(name string, bytesPerSecond float64, overhead Duration) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive: " + name)
	}
	return &Pipe{res: Resource{name: name}, bytesPerSecond: bytesPerSecond, overhead: overhead}
}

// Name returns the diagnostic name given at construction.
func (p *Pipe) Name() string { return p.res.name }

// Bandwidth returns the configured bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bytesPerSecond }

// Transfer schedules a transfer of size bytes arriving at the given time and
// returns the start and completion of the transfer.
func (p *Pipe) Transfer(arrival Time, size int) (start, end Time) {
	service := p.overhead + TransferTime(size, p.bytesPerSecond)
	p.bytes += int64(size)
	return p.res.Acquire(arrival, service)
}

// Delay is a convenience wrapper around Transfer returning only completion.
func (p *Pipe) Delay(arrival Time, size int) Time {
	_, end := p.Transfer(arrival, size)
	return end
}

// Observe attaches fn as the pipe's transfer observer (nil detaches); each
// Transfer reports its arrival, service start and completion. Like
// Resource.Observe, attachment never changes timing and survives Reset.
func (p *Pipe) Observe(fn AcquireFunc) { p.res.Observe(fn) }

// Bytes reports the cumulative bytes transferred.
func (p *Pipe) Bytes() int64 { return p.bytes }

// Busy reports accumulated service time.
func (p *Pipe) Busy() Duration { return p.res.Busy() }

// Utilization reports the busy fraction of [0, horizon].
func (p *Pipe) Utilization(horizon Time) float64 { return p.res.Utilization(horizon) }

// Reset returns the pipe to its initial idle state.
func (p *Pipe) Reset() {
	p.res.Reset()
	p.bytes = 0
}
