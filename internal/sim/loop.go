package sim

// Op performs one logical operation posted at the given virtual time and
// returns the operation's completion time. An Op typically walks the posted
// request through a series of Resources and Pipes. Completion must not
// precede the post time.
type Op func(post Time) (complete Time)

// Client is one closed-loop load generator: it issues operations back to
// back, keeping at most Window operations in flight, spending PostCost of
// its own (CPU) time per issue.
type Client struct {
	Op       Op
	PostCost Duration // CPU issue cost per operation; must be > 0
	Window   int      // maximum outstanding operations; must be >= 1
	MaxOps   int64    // stop after this many posts; 0 means until horizon
	// RecordLatencies keeps every completion latency so the result can
	// report percentiles; leave false for long runs to save memory.
	RecordLatencies bool

	// state
	nextPost    Time
	outstanding timeHeap
	posted      int64
	completed   int64 // completions observed within the horizon
	latencySum  Duration
	latencyMax  Duration
	latencyMin  Duration
	latencies   []Duration // populated when RecordLatencies is set
	cpuBusy     Duration   // CPU time charged via PostCost and ChargeCPU
}

// ChargeCPU adds extra CPU busy time to the client's accounting (used by ops
// that burn caller CPU, e.g. the SP gather memcpy). It does not advance time;
// the op is responsible for reflecting the cost in its completion time.
func (c *Client) ChargeCPU(d Duration) { c.cpuBusy += d }

// ClientStats summarizes one client's activity after a run.
type ClientStats struct {
	Posted     int64
	Completed  int64
	LatencyAvg Duration
	LatencyMin Duration
	LatencyMax Duration
	CPUBusy    Duration
	Latencies  []Duration // sorted; only with RecordLatencies
}

// Percentile returns the p-quantile (0..1) of the recorded latencies, or 0
// when none were recorded. The quantile is linearly interpolated between the
// two nearest order statistics (the "R-7" estimator), so Percentile(0.5) of
// {10, 20} is 15, not 10.
func (s ClientStats) Percentile(p float64) Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(len(s.Latencies)-1)
	lo := int(rank)
	if lo >= len(s.Latencies)-1 {
		return s.Latencies[len(s.Latencies)-1]
	}
	frac := rank - float64(lo)
	a, b := s.Latencies[lo], s.Latencies[lo+1]
	// Round half up so the interpolated Duration is the nearest nanosecond.
	return a + Duration(frac*float64(b-a)+0.5)
}

// Result summarizes a closed-loop run.
type Result struct {
	Horizon   Time
	Completed int64
	Clients   []ClientStats
}

// Throughput reports completed operations per second of virtual time.
func (r Result) Throughput() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Horizon.Seconds()
}

// MOPS reports throughput in millions of operations per second, the unit the
// paper plots.
func (r Result) MOPS() float64 { return r.Throughput() / 1e6 }

// LatencyAvg reports the completion-weighted mean latency over all clients.
func (r Result) LatencyAvg() Duration {
	var sum Duration
	var n int64
	for _, c := range r.Clients {
		sum += c.LatencyAvg * Duration(c.Completed)
		n += c.Completed
	}
	if n == 0 {
		return 0
	}
	return sum / Duration(n)
}

// TotalCPUBusy reports the summed CPU busy time across clients.
func (r Result) TotalCPUBusy() Duration {
	var sum Duration
	for _, c := range r.Clients {
		sum += c.CPUBusy
	}
	return sum
}

// nextAction reports when the client can next issue an operation.
func (c *Client) nextAction() Time {
	if len(c.outstanding) < c.Window {
		return c.nextPost
	}
	return Max(c.nextPost, c.outstanding[0])
}

// RunClosedLoop drives the clients in global virtual-time order until the
// horizon. Operations posted before the horizon run to completion, but only
// completions at or before the horizon are counted, so Result.Throughput is a
// steady-state estimate. The clients' Op closures may share state freely:
// dispatch is strictly sequential in time order.
//
// RunClosedLoop is the single-shard configuration of the sharded Kernel —
// every client registered with no footprint, so nothing runs concurrently.
// Clients whose ops are confined to declared machine footprints can run
// through a Kernel (or cluster.Engine) instead and use multiple cores.
func RunClosedLoop(clients []*Client, horizon Time) Result {
	k := NewKernel(1)
	for _, c := range clients {
		k.Add(c)
	}
	return k.Run(horizon)
}

// RunOnce runs a single synchronous operation sequence: it executes op at
// time start and returns its latency. It is a convenience for pure latency
// probes that need no contention.
func RunOnce(op Op, start Time) Duration {
	end := op(start)
	if end < start {
		panic("sim: op completed before it was posted")
	}
	return end - start
}
