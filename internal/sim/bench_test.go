package sim

import "testing"

// Host-side microbenchmarks of the simulation kernel itself: these measure
// how fast the simulator runs on the host, not virtual-time quantities.

func BenchmarkResourceAcquireOrdered(b *testing.B) {
	r := NewResource("b")
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i*10), 5)
	}
}

func BenchmarkResourceAcquireGapFill(b *testing.B) {
	r := NewResource("b")
	// Alternate far-future and past arrivals to exercise the gap search.
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			r.Acquire(Time(i*100), 10)
		} else {
			r.Acquire(Time(i*100-5000), 10)
		}
	}
}

func BenchmarkPipeTransfer(b *testing.B) {
	p := NewPipe("b", 5e9, 20)
	for i := 0; i < b.N; i++ {
		p.Transfer(Time(i*100), 64)
	}
}

func BenchmarkClosedLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewResource("eu")
		clients := []*Client{
			{Op: func(t Time) Time { return r.Delay(t, 200) }, PostCost: 100, Window: 8},
			{Op: func(t Time) Time { return r.Delay(t, 200) }, PostCost: 100, Window: 8},
		}
		RunClosedLoop(clients, Millisecond)
	}
}

// BenchmarkKernelDispatch isolates pure scheduler cost: 16 clients with
// constant-latency ops (no shared resources), so every nanosecond and every
// allocation is queue bookkeeping — the completion window and the ready-client
// merge — not model work. This is the number that shows the container/heap
// interface boxing (one heap allocation per posted op) and its removal.
func BenchmarkKernelDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clients := make([]*Client, 16)
		for c := range clients {
			lat := Duration(1500 + 100*c)
			clients[c] = &Client{
				Op:       func(t Time) Time { return t + lat },
				PostCost: 100,
				Window:   8,
			}
		}
		RunClosedLoop(clients, Millisecond)
	}
}
