package cluster

import (
	"testing"

	"rdmasem/internal/sim"
	"rdmasem/internal/telemetry"
)

func testCluster(t *testing.T, machines int, tl *telemetry.Timeline) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Machines = machines
	cfg.Timeline = tl
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestEngineLookaheadFromFabric(t *testing.T) {
	cl := testCluster(t, 2, nil)
	want := cl.Config().Fabric.Propagation + cl.Config().Fabric.SwitchLatency
	if got := cl.Lookahead(); got != want {
		t.Fatalf("cluster lookahead %v, want %v", got, want)
	}
	eng := cl.NewEngine(4)
	if eng.Lookahead() != want {
		t.Fatalf("engine lookahead %v, want %v", eng.Lookahead(), want)
	}
	if eng.Workers() != 4 {
		t.Fatalf("workers=%d, want 4", eng.Workers())
	}
}

// TestEngineTimelinePin: trace spans carry a global record sequence, so a
// cluster with a Timeline attached must force serial dispatch.
func TestEngineTimelinePin(t *testing.T) {
	cl := testCluster(t, 2, telemetry.NewTimeline(1024))
	if got := cl.NewEngine(8).Workers(); got != 1 {
		t.Fatalf("timeline-attached engine runs %d workers, want 1", got)
	}
}

// TestEngineRejectsForeignMachine: footprints must name machines of this
// engine's own cluster.
func TestEngineRejectsForeignMachine(t *testing.T) {
	cl := testCluster(t, 2, nil)
	other := testCluster(t, 2, nil)
	c := &sim.Client{Op: func(post sim.Time) sim.Time { return post + 1 }, PostCost: 1, Window: 1}
	for name, m := range map[string]*Machine{"foreign": other.Machine(1), "nil": nil} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s machine: expected panic", name)
				}
			}()
			cl.NewEngine(1).Add(c, m)
		}()
	}
}

// TestEngineRunsClients: a smoke run over two disjoint machines.
func TestEngineRunsClients(t *testing.T) {
	cl := testCluster(t, 4, nil)
	eng := cl.NewEngine(2)
	eng.Add(&sim.Client{Op: func(post sim.Time) sim.Time { return post + 500 }, PostCost: 100, Window: 1},
		cl.Machine(0), cl.Machine(1))
	eng.Add(&sim.Client{Op: func(post sim.Time) sim.Time { return post + 500 }, PostCost: 100, Window: 1},
		cl.Machine(2), cl.Machine(3))
	res := eng.Run(sim.Millisecond)
	if res.Completed == 0 {
		t.Fatal("no ops completed")
	}
	if res.Clients[0].Completed != res.Clients[1].Completed {
		t.Fatalf("identical disjoint clients diverged: %d vs %d",
			res.Clients[0].Completed, res.Clients[1].Completed)
	}
}
