package cluster

import (
	"testing"

	"rdmasem/internal/sim"
)

func TestDefaultConfigBuildsPaperTestbed(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 8 {
		t.Fatalf("machines=%d, want 8", c.Size())
	}
	m := c.Machine(0)
	if m.Topology().Sockets() != 2 {
		t.Fatalf("sockets=%d, want 2", m.Topology().Sockets())
	}
	if m.NIC().Ports() != 2 {
		t.Fatalf("ports=%d, want 2", m.NIC().Ports())
	}
	// 16 ports total on the switch.
	if got := len(c.Fabric().Endpoints()); got != 16 {
		t.Fatalf("endpoints=%d, want 16", got)
	}
}

func TestNewRejectsEmptyCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewPropagatesBadSubConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo.Sockets = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected topo validation error")
	}
	cfg = DefaultConfig()
	cfg.NIC.Ports = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected NIC validation error")
	}
	cfg = DefaultConfig()
	cfg.Fabric.LinkBandwidth = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected fabric validation error")
	}
	cfg = DefaultConfig()
	cfg.PerSocketMem = 17 // not page aligned
	if _, err := New(cfg); err == nil {
		t.Fatal("expected memory validation error")
	}
}

func TestPortSocketBinding(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Machine(0)
	if m.PortSocket(0) != 0 || m.PortSocket(1) != 1 {
		t.Fatal("ports must bind round-robin to sockets (Fig 9)")
	}
	if m.SocketPort(0) != 0 || m.SocketPort(1) != 1 {
		t.Fatal("SocketPort must invert PortSocket")
	}
}

func TestMachineAccessorsAndPanics(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Machine(3).ID() != 3 {
		t.Fatal("machine id mismatch")
	}
	if len(c.Machines()) != 8 {
		t.Fatal("Machines() length")
	}
	if c.Machine(0).Fabric() != c.Fabric() {
		t.Fatal("machine must reference the shared fabric")
	}
	for _, fn := range []func(){
		func() { c.Machine(99) },
		func() { c.Machine(0).Endpoint(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAllocRoutesToSocket(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Machine(1)
	r0 := m.MustAlloc(0, 4096, 0)
	r1 := m.MustAlloc(1, 4096, 0)
	if r0.Socket() != 0 || r1.Socket() != 1 {
		t.Fatal("allocation socket mismatch")
	}
	if _, err := m.Alloc(9, 64, 0); err == nil {
		t.Fatal("expected bad-socket error")
	}
}

func TestClusterReset(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Machine(0)
	m.NIC().Translate(4096, 64)
	m.QPI().Delay(0, 1024)
	c.Fabric().Send(0, m.Endpoint(0), c.Machine(1).Endpoint(0), 4096)
	c.Reset()
	if m.NIC().TranslationCache().Len() != 0 {
		t.Fatal("NIC cache survived reset")
	}
	if m.QPI().Busy() != 0 {
		t.Fatal("QPI survived reset")
	}
	if m.Endpoint(0).TxUtilization(sim.Second) != 0 {
		t.Fatal("fabric link survived reset")
	}
}
