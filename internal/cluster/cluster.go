// Package cluster assembles machines — NUMA topology, memory space, RNIC —
// and plugs their ports into a shared fabric. The default configuration is
// the paper's testbed: eight dual-socket machines, one dual-port ConnectX-3
// style NIC each, one 40 Gbps switch.
package cluster

import (
	"fmt"

	"rdmasem/internal/fabric"
	"rdmasem/internal/mem"
	"rdmasem/internal/rnic"
	"rdmasem/internal/sim"
	"rdmasem/internal/topo"
)

// Config describes a cluster to build.
type Config struct {
	Machines     int
	PerSocketMem uint64 // bytes of address space per socket
	Topo         topo.Params
	NIC          rnic.Params
	Fabric       fabric.Params
	// Faults optionally attaches a seeded lossy-fabric model (drops,
	// corruption, delay) to the switch. nil — the default — is a lossless
	// fabric and changes nothing. Shorthand for setting Fabric.Faults.
	Faults *fabric.FaultPlan
}

// DefaultConfig returns the paper's eight-machine testbed. Each socket gets
// 48 GB of address space (96 GB per machine), backed lazily.
func DefaultConfig() Config {
	return Config{
		Machines:     8,
		PerSocketMem: 48 << 30,
		Topo:         topo.DefaultParams(),
		NIC:          rnic.DefaultParams(),
		Fabric:       fabric.DefaultParams(),
	}
}

// Machine is one simulated host.
type Machine struct {
	id        int
	topology  *topo.Topology
	space     *mem.Space
	nic       *rnic.NIC
	qpi       *sim.Pipe
	fab       *fabric.Fabric
	endpoints []*fabric.Endpoint // one per NIC port
	qpSeq     *uint64            // cluster-wide QP number allocator
}

// Cluster is a set of machines sharing one switch.
type Cluster struct {
	cfg      Config
	machines []*Machine
	fab      *fabric.Fabric
	qpSeq    uint64 // last QP number handed out on this cluster
}

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.Faults != nil {
		cfg.Fabric.Faults = cfg.Faults
	}
	fab, err := fabric.New(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fab: fab}
	for i := 0; i < cfg.Machines; i++ {
		t, err := topo.New(cfg.Topo)
		if err != nil {
			return nil, err
		}
		space, err := mem.NewSpace(t.Sockets(), cfg.PerSocketMem)
		if err != nil {
			return nil, err
		}
		nicName := fmt.Sprintf("m%d/nic", i)
		nic, err := rnic.New(nicName, cfg.NIC)
		if err != nil {
			return nil, err
		}
		m := &Machine{
			id:       i,
			topology: t,
			space:    space,
			nic:      nic,
			qpi:      sim.NewPipe(fmt.Sprintf("m%d/qpi", i), cfg.Topo.QPIBandwidth, 0),
			fab:      fab,
			qpSeq:    &c.qpSeq,
		}
		for p := 0; p < nic.Ports(); p++ {
			m.endpoints = append(m.endpoints, fab.Register(fmt.Sprintf("m%d/p%d", i, p)))
		}
		c.machines = append(c.machines, m)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine {
	if i < 0 || i >= len(c.machines) {
		panic(fmt.Sprintf("cluster: no machine %d", i))
	}
	return c.machines[i]
}

// Machines returns all machines in id order.
func (c *Cluster) Machines() []*Machine {
	out := make([]*Machine, len(c.machines))
	copy(out, c.machines)
	return out
}

// Fabric returns the shared switch fabric.
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// Reset clears all queues, caches and link state across the cluster, keeping
// memory contents and registrations (used between measurement phases).
func (c *Cluster) Reset() {
	c.fab.Reset()
	for _, m := range c.machines {
		m.nic.Reset()
		m.qpi.Reset()
	}
}

// ID returns the machine's index within its cluster.
func (m *Machine) ID() int { return m.id }

// Topology returns the machine's NUMA layout.
func (m *Machine) Topology() *topo.Topology { return m.topology }

// Space returns the machine's memory.
func (m *Machine) Space() *mem.Space { return m.space }

// NIC returns the machine's RNIC.
func (m *Machine) NIC() *rnic.NIC { return m.nic }

// QPI returns the machine's inter-socket interconnect pipe.
func (m *Machine) QPI() *sim.Pipe { return m.qpi }

// Fabric returns the switch the machine's ports are plugged into.
func (m *Machine) Fabric() *fabric.Fabric { return m.fab }

// NextQPID hands out the next QP number, unique across the whole cluster.
// The counter lives on the Cluster, not in package state, so concurrent
// simulations of disjoint clusters never share an allocator.
func (m *Machine) NextQPID() uint64 {
	*m.qpSeq++
	return *m.qpSeq
}

// Endpoint returns the fabric endpoint of NIC port p.
func (m *Machine) Endpoint(p int) *fabric.Endpoint {
	if p < 0 || p >= len(m.endpoints) {
		panic(fmt.Sprintf("cluster: machine %d has no port %d", m.id, p))
	}
	return m.endpoints[p]
}

// PortSocket returns the socket a NIC port is affiliated with. Ports are
// bound round-robin to sockets, mirroring the paper's Figure 9 where each
// port of the dual-port NIC serves a distinct socket.
func (m *Machine) PortSocket(p int) topo.SocketID {
	return topo.SocketID(p % m.topology.Sockets())
}

// SocketPort returns the NIC port affiliated with the given socket (the
// inverse of PortSocket for the default dual-socket/dual-port shape).
func (m *Machine) SocketPort(s topo.SocketID) int {
	return int(s) % m.nic.Ports()
}

// Alloc reserves memory on the given socket (page aligned by default).
func (m *Machine) Alloc(s topo.SocketID, size int, align uint64) (*mem.Region, error) {
	return m.space.Alloc(s, size, align)
}

// MustAlloc is Alloc that panics on failure, for test and benchmark setup.
func (m *Machine) MustAlloc(s topo.SocketID, size int, align uint64) *mem.Region {
	r, err := m.Alloc(s, size, align)
	if err != nil {
		panic(err)
	}
	return r
}
