// Package cluster assembles machines — NUMA topology, memory space, RNIC —
// and plugs their ports into a shared fabric. The default configuration is
// the paper's testbed: eight dual-socket machines, one dual-port ConnectX-3
// style NIC each, one 40 Gbps switch.
package cluster

import (
	"fmt"

	"rdmasem/internal/fabric"
	"rdmasem/internal/mem"
	"rdmasem/internal/rnic"
	"rdmasem/internal/sim"
	"rdmasem/internal/telemetry"
	"rdmasem/internal/topo"
)

// Config describes a cluster to build.
type Config struct {
	Machines     int
	PerSocketMem uint64 // bytes of address space per socket
	Topo         topo.Params
	NIC          rnic.Params
	Fabric       fabric.Params
	// Faults optionally attaches a seeded lossy-fabric model (drops,
	// corruption, delay) to the switch. nil — the default — is a lossless
	// fabric and changes nothing. Shorthand for setting Fabric.Faults.
	Faults *fabric.FaultPlan
	// Telemetry optionally attaches a metrics registry. Every queueing
	// resource of the cluster — QPI, PCIe channels, port execution and
	// atomic units, fabric links, per-QP pipelines — then reports wait and
	// service histograms, the verbs layer reports per-opcode stage
	// histograms, and FoldTelemetry folds the NIC/fabric counters in. nil —
	// the default — collects nothing and changes nothing: telemetry is
	// passive, so results are byte-identical either way (the same contract
	// Faults keeps).
	Telemetry *telemetry.Registry
	// Timeline optionally records every operation's stage walk as Chrome
	// trace-event spans (one process group per cluster, one thread per QP).
	// Usable with or without Telemetry, and equally passive.
	Timeline *telemetry.Timeline
	// Adaptive optionally carries settings for the per-QP adaptive IO
	// controllers (internal/adaptive). nil — the default — builds no
	// controllers and changes nothing. The struct lives here rather than in
	// the adaptive package so a cluster can carry the settings without
	// importing the controller layer, which sits above verbs in the import
	// graph.
	Adaptive *AdaptiveParams
}

// AdaptiveParams tunes the adaptive IO controllers. Zero values select the
// controller's defaults; see internal/adaptive for the semantics.
type AdaptiveParams struct {
	Epoch    sim.Duration // decision interval in virtual time (0 = derived default)
	Confirm  int          // consecutive drifted epochs before re-probing (0 = default)
	Dwell    int          // cooldown epochs after a switch before re-probing (0 = default)
	MaxDepth int          // doorbell list depth ceiling (0 = default)
	Shadow   bool         // observe and decide but never retune (passive mode)
}

// DefaultConfig returns the paper's eight-machine testbed. Each socket gets
// 48 GB of address space (96 GB per machine), backed lazily.
func DefaultConfig() Config {
	return Config{
		Machines:     8,
		PerSocketMem: 48 << 30,
		Topo:         topo.DefaultParams(),
		NIC:          rnic.DefaultParams(),
		Fabric:       fabric.DefaultParams(),
	}
}

// Machine is one simulated host.
type Machine struct {
	id        int
	topology  *topo.Topology
	space     *mem.Space
	nic       *rnic.NIC
	qpi       *sim.Pipe
	fab       *fabric.Fabric
	endpoints []*fabric.Endpoint // one per NIC port
	qpSeq     *uint64            // cluster-wide QP number allocator
	cm        *sim.Resource      // connection manager (QP modify/reconnect), built on first use
	reg       *telemetry.Registry
	tl        *telemetry.Timeline
	tlPID     int64 // timeline process group shared by the cluster
}

// Cluster is a set of machines sharing one switch.
type Cluster struct {
	cfg      Config
	machines []*Machine
	fab      *fabric.Fabric
	qpSeq    uint64 // last QP number handed out on this cluster
}

// Adaptive returns the cluster's adaptive-controller settings (nil when the
// cluster was built without them).
func (c *Cluster) Adaptive() *AdaptiveParams { return c.cfg.Adaptive }

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.Faults != nil {
		cfg.Fabric.Faults = cfg.Faults
	}
	fab, err := fabric.New(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fab: fab}
	var tlPID int64
	if cfg.Timeline != nil {
		tlPID = cfg.Timeline.NewGroup("cluster")
	}
	for i := 0; i < cfg.Machines; i++ {
		t, err := topo.New(cfg.Topo)
		if err != nil {
			return nil, err
		}
		space, err := mem.NewSpace(t.Sockets(), cfg.PerSocketMem)
		if err != nil {
			return nil, err
		}
		nicName := fmt.Sprintf("m%d/nic", i)
		nic, err := rnic.New(nicName, cfg.NIC)
		if err != nil {
			return nil, err
		}
		m := &Machine{
			id:       i,
			topology: t,
			space:    space,
			nic:      nic,
			qpi:      sim.NewPipe(fmt.Sprintf("m%d/qpi", i), cfg.Topo.QPIBandwidth, 0),
			fab:      fab,
			qpSeq:    &c.qpSeq,
			reg:      cfg.Telemetry,
			tl:       cfg.Timeline,
			tlPID:    tlPID,
		}
		for p := 0; p < nic.Ports(); p++ {
			m.endpoints = append(m.endpoints, fab.RegisterAt(fmt.Sprintf("m%d/p%d", i, p), i))
		}
		if cfg.Telemetry != nil {
			m.attachTelemetry(cfg.Telemetry)
		}
		c.machines = append(c.machines, m)
	}
	return c, nil
}

// observed is the surface shared by sim.Resource and sim.Pipe that telemetry
// attachment needs.
type observed interface {
	Observe(sim.AcquireFunc)
}

// attachTelemetry hooks every queueing resource of the machine into the
// registry: each reports a wait-time histogram (queueing delay before
// service) and a service-time histogram (occupancy) under its component
// name. The hooks are pure readers of the placements the resources already
// compute, so timing is unchanged.
func (m *Machine) attachTelemetry(reg *telemetry.Registry) {
	label := m.Label()
	attach := func(component string, o observed) {
		wait := reg.Hist(label, component, "wait")
		service := reg.Hist(label, component, "service")
		o.Observe(func(arrival, start, end sim.Time) {
			wait.Observe(start - arrival)
			service.Observe(end - start)
		})
	}
	attach("qpi", m.qpi)
	attach("nic/pcie-rd", m.nic.PCIeDown())
	attach("nic/pcie-wr", m.nic.PCIeUp())
	for p := 0; p < m.nic.Ports(); p++ {
		attach(fmt.Sprintf("nic/port%d/exec", p), m.nic.Port(p).Exec())
		attach(fmt.Sprintf("nic/port%d/atomic", p), m.nic.Port(p).Atomic())
	}
	for p, ep := range m.endpoints {
		attach(fmt.Sprintf("fab/p%d/tx", p), ep.Tx())
		attach(fmt.Sprintf("fab/p%d/rx", p), ep.Rx())
	}
}

// FoldTelemetry folds the cluster's accumulated NIC stage counters and the
// fabric's fault tallies into the attached registry as counters (zero-valued
// tallies are skipped to keep summaries compact). Call it when a measurement
// phase ends; the harness does so before each per-experiment snapshot. A
// cluster without telemetry attached folds nothing.
func (c *Cluster) FoldTelemetry() {
	reg := c.cfg.Telemetry
	if reg == nil {
		return
	}
	for _, m := range c.machines {
		label := m.Label()
		count := func(stage string, v uint64) {
			if v != 0 {
				reg.Count(label, "nic", stage, int64(v))
			}
		}
		sc := m.nic.Counters()
		count("doorbells", sc.Doorbells)
		count("doorbell-wqes", sc.DoorbellWQEs)
		count("wqe-fetches", sc.WQEFetches)
		count("gather-ops", sc.GatherOps)
		count("gather-frags", sc.GatherFrags)
		count("gather-bytes", sc.GatherBytes)
		count("scatter-ops", sc.ScatterOps)
		count("scatter-frags", sc.ScatterFrags)
		count("scatter-bytes", sc.ScatterBytes)
		count("xlate-hits", sc.TranslationHits)
		count("xlate-misses", sc.TranslationMisses)
		count("qp-hits", sc.QPHits)
		count("qp-misses", sc.QPMisses)
		count("mr-hits", sc.MRHits)
		count("mr-misses", sc.MRMisses)
		rel := func(stage string, v uint64) {
			if v != 0 {
				reg.Count(label, "nic/rel", stage, int64(v))
			}
		}
		rel("segments", sc.Rel.Segments)
		rel("retransmits", sc.Rel.Retransmits)
		rel("ack-timeouts", sc.Rel.AckTimeouts)
		rel("naks", sc.Rel.NaksReceived)
		rel("rnr-naks", sc.Rel.RNRNaks)
		rel("retries-exhausted", sc.Rel.RetriesExhausted)
		rel("flushed-wrs", sc.Rel.FlushedWRs)
		rel("silent-drops", sc.Rel.SilentDrops)
		rel("reconnects", sc.Rel.Reconnects)
	}
	fs := c.fab.FaultStats()
	ffold := func(stage string, v uint64) {
		if v != 0 {
			reg.Count("", "fabric", stage, int64(v))
		}
	}
	ffold("segments", fs.Segments)
	ffold("drops", fs.Drops)
	ffold("corrupts", fs.Corrupts)
	ffold("delays", fs.Delays)
	ffold("flap-drops", fs.FlapDrops)
	ffold("crash-drops", fs.CrashDrops)
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine {
	if i < 0 || i >= len(c.machines) {
		panic(fmt.Sprintf("cluster: no machine %d", i))
	}
	return c.machines[i]
}

// Machines returns all machines in id order.
func (c *Cluster) Machines() []*Machine {
	out := make([]*Machine, len(c.machines))
	copy(out, c.machines)
	return out
}

// Fabric returns the shared switch fabric.
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// Reset clears all queues, caches and link state across the cluster, keeping
// memory contents and registrations (used between measurement phases).
func (c *Cluster) Reset() {
	c.fab.Reset()
	for _, m := range c.machines {
		m.nic.Reset()
		m.qpi.Reset()
		if m.cm != nil {
			m.cm.Reset()
		}
	}
}

// ID returns the machine's index within its cluster.
func (m *Machine) ID() int { return m.id }

// Label returns the machine's telemetry label, e.g. "m0".
func (m *Machine) Label() string { return fmt.Sprintf("m%d", m.id) }

// Telemetry returns the attached metrics registry, or nil.
func (m *Machine) Telemetry() *telemetry.Registry { return m.reg }

// Timeline returns the attached span recorder, or nil.
func (m *Machine) Timeline() *telemetry.Timeline { return m.tl }

// TimelinePID returns the timeline process group of the machine's cluster
// (meaningful only when Timeline is non-nil).
func (m *Machine) TimelinePID() int64 { return m.tlPID }

// Topology returns the machine's NUMA layout.
func (m *Machine) Topology() *topo.Topology { return m.topology }

// Space returns the machine's memory.
func (m *Machine) Space() *mem.Space { return m.space }

// NIC returns the machine's RNIC.
func (m *Machine) NIC() *rnic.NIC { return m.nic }

// QPI returns the machine's inter-socket interconnect pipe.
func (m *Machine) QPI() *sim.Pipe { return m.qpi }

// Fabric returns the switch the machine's ports are plugged into.
func (m *Machine) Fabric() *fabric.Fabric { return m.fab }

// CM returns the machine's connection-manager resource: the serialized
// driver/firmware path that executes QP state transitions (ibv_modify_qp)
// during connection recovery. It is built on first use — a cluster that
// never reconnects has no CM resource and therefore byte-identical telemetry
// to builds without the recovery layer.
func (m *Machine) CM() *sim.Resource {
	if m.cm == nil {
		m.cm = sim.NewResource(fmt.Sprintf("m%d/cm", m.id))
		if m.reg != nil {
			wait := m.reg.Hist(m.Label(), "cm", "wait")
			service := m.reg.Hist(m.Label(), "cm", "service")
			m.cm.Observe(func(arrival, start, end sim.Time) {
				wait.Observe(start - arrival)
				service.Observe(end - start)
			})
		}
	}
	return m.cm
}

// CrashedAt reports whether the fault plan has this machine inside a crash
// window at time t (false without a plan).
func (m *Machine) CrashedAt(t sim.Time) bool {
	return m.fab.Params().Faults.MachineDown(m.id, t)
}

// NextQPID hands out the next QP number, unique across the whole cluster.
// The counter lives on the Cluster, not in package state, so concurrent
// simulations of disjoint clusters never share an allocator.
func (m *Machine) NextQPID() uint64 {
	*m.qpSeq++
	return *m.qpSeq
}

// Endpoint returns the fabric endpoint of NIC port p.
func (m *Machine) Endpoint(p int) *fabric.Endpoint {
	if p < 0 || p >= len(m.endpoints) {
		panic(fmt.Sprintf("cluster: machine %d has no port %d", m.id, p))
	}
	return m.endpoints[p]
}

// PortSocket returns the socket a NIC port is affiliated with. Ports are
// bound round-robin to sockets, mirroring the paper's Figure 9 where each
// port of the dual-port NIC serves a distinct socket.
func (m *Machine) PortSocket(p int) topo.SocketID {
	return topo.SocketID(p % m.topology.Sockets())
}

// SocketPort returns the NIC port affiliated with the given socket (the
// inverse of PortSocket for the default dual-socket/dual-port shape).
func (m *Machine) SocketPort(s topo.SocketID) int {
	return int(s) % m.nic.Ports()
}

// Alloc reserves memory on the given socket (page aligned by default).
func (m *Machine) Alloc(s topo.SocketID, size int, align uint64) (*mem.Region, error) {
	return m.space.Alloc(s, size, align)
}

// MustAlloc is Alloc that panics on failure, for test and benchmark setup.
func (m *Machine) MustAlloc(s topo.SocketID, size int, align uint64) *mem.Region {
	r, err := m.Alloc(s, size, align)
	if err != nil {
		panic(err)
	}
	return r
}
