// Engine: the cluster-level face of the sharded event kernel. The cluster
// owns the machine-to-shard mapping contract — a client's footprint is the
// set of Machines its ops touch — and derives the conservative lookahead
// window from its fabric parameters.
package cluster

import (
	"fmt"

	"rdmasem/internal/sim"
)

// Lookahead reports the conservative cross-machine lookahead window: the
// minimum virtual time between a send posted on one machine and its earliest
// effect on another. On this fabric a cut-through switch forwards a frame's
// first byte after cable propagation plus switch latency, before even the
// frame-overhead bytes have fully serialized, so that sum is the floor. The
// sharded kernel records it as the bound any sub-machine-group scheduling
// would have to respect; footprint-closed shards never exchange events, so
// they trivially respect it at any advance.
func (c *Cluster) Lookahead() sim.Duration {
	return c.cfg.Fabric.Propagation + c.cfg.Fabric.SwitchLatency
}

// Engine drives closed-loop clients over the cluster on the sharded event
// kernel. Register each client with the machines its Op closure touches
// (home machine first); the engine unions overlapping footprints into
// shards — machine groups that only ever interact through each other's
// fabric endpoints — and runs independent shards on up to the configured
// number of host workers. Results, telemetry snapshots and reliability
// counters are byte-identical at any worker count; only wall-clock time
// changes.
type Engine struct {
	cl *Cluster
	k  *sim.Kernel
}

// NewEngine returns an engine running shards on up to workers host threads
// (values below 1 clamp to 1, fully serial). A cluster with a Timeline
// attached pins the engine to one worker: trace spans carry a global record
// sequence used as a sort tiebreak, so span files are only reproducible
// under single-threaded dispatch. Metrics registries need no such pin —
// counter and histogram updates commute.
func (c *Cluster) NewEngine(workers int) *Engine {
	if c.cfg.Timeline != nil {
		workers = 1
	}
	k := sim.NewKernel(workers)
	k.SetLookahead(c.Lookahead())
	return &Engine{cl: c, k: k}
}

// Add registers a client with its machine footprint, home machine first.
// Every machine must belong to this engine's cluster. A client registered
// with no machines may touch anything and collapses the run into a single
// shard (the conservative default, equivalent to sim.RunClosedLoop).
func (e *Engine) Add(c *sim.Client, on ...*Machine) {
	ids := make([]int, len(on))
	for i, m := range on {
		if m == nil {
			panic("cluster: nil machine in client footprint")
		}
		if m.id < 0 || m.id >= len(e.cl.machines) || e.cl.machines[m.id] != m {
			panic(fmt.Sprintf("cluster: machine %d is not part of this engine's cluster", m.id))
		}
		ids[i] = m.id
	}
	e.k.Add(c, ids...)
}

// Workers reports the effective worker count (after any Timeline pin).
func (e *Engine) Workers() int { return e.k.Workers() }

// Lookahead reports the kernel's recorded cross-machine lookahead window.
func (e *Engine) Lookahead() sim.Duration { return e.k.Lookahead() }

// Run drives all registered clients to the horizon. Semantics are exactly
// sim.RunClosedLoop's; see sim.Kernel for the shard partition.
func (e *Engine) Run(horizon sim.Time) sim.Result { return e.k.Run(horizon) }
