// Package rdmasem_test wires one testing.B benchmark to every table and
// figure of the paper, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation at reduced scale and reports each
// experiment's wall-clock cost. Use cmd/rdmabench for full-scale sweeps and
// readable output.
package rdmasem_test

import (
	"io"
	"testing"

	"rdmasem/internal/bench"
)

// benchScale keeps every experiment comfortably inside testing.B budgets;
// the shapes are scale-invariant (only sweep horizons shrink).
const benchScale = 0.05

func run(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := bench.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		report.Render(io.Discard)
	}
}

func BenchmarkFig01PacketThrottling(b *testing.B) { run(b, "fig1") }
func BenchmarkFig03BatchStrategies(b *testing.B)  { run(b, "fig3") }
func BenchmarkFig04BatchSizes(b *testing.B)       { run(b, "fig4") }
func BenchmarkFig05ThreadScaling(b *testing.B)    { run(b, "fig5") }
func BenchmarkFig06RandSeq(b *testing.B)          { run(b, "fig6") }
func BenchmarkFig06cLocalDRAM(b *testing.B)       { run(b, "fig6c") }
func BenchmarkFig06dRegisteredSize(b *testing.B)  { run(b, "fig6d") }
func BenchmarkFig08Consolidation(b *testing.B)    { run(b, "fig8") }
func BenchmarkTable02LocalSockets(b *testing.B)   { run(b, "table2") }
func BenchmarkTable03RemoteSockets(b *testing.B)  { run(b, "table3") }
func BenchmarkFig10aSpinlock(b *testing.B)        { run(b, "fig10a") }
func BenchmarkFig10bSequencer(b *testing.B)       { run(b, "fig10b") }
func BenchmarkFig12Hashtable(b *testing.B)        { run(b, "fig12") }
func BenchmarkFig13Consolidation(b *testing.B)    { run(b, "fig13") }
func BenchmarkFig15Shuffle(b *testing.B)          { run(b, "fig15") }
func BenchmarkFig16JoinBatching(b *testing.B)     { run(b, "fig16") }
func BenchmarkFig17JoinScale(b *testing.B)        { run(b, "fig17") }
func BenchmarkFig18CPUCost(b *testing.B)          { run(b, "fig18") }
func BenchmarkFig19DistributedLog(b *testing.B)   { run(b, "fig19") }
func BenchmarkMRScale(b *testing.B)               { run(b, "mrscale") }
func BenchmarkQPScale(b *testing.B)               { run(b, "qpscale") }
func BenchmarkAblationTranslation(b *testing.B)   { run(b, "ablation-xlate") }
func BenchmarkAblationMMIO(b *testing.B)          { run(b, "ablation-mmio") }
func BenchmarkAblationQPI(b *testing.B)           { run(b, "ablation-qpi") }

func BenchmarkYCSBMixed(b *testing.B) { run(b, "ycsb") }

func BenchmarkBreakdown(b *testing.B) { run(b, "breakdown") }

func BenchmarkTable01Strategies(b *testing.B) { run(b, "table1") }
